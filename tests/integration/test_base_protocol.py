"""Integration tests for the base HLRC protocol (no FT).

Each test builds a tiny inline workload exercising one coherence
scenario end-to-end through the simulator.
"""

from typing import Any, Dict, Iterator

import numpy as np
import pytest

from repro import DsmCluster, DsmConfig
from repro.apps.base import DsmApp
from repro.dsm.protocol import DsmProcess

from tests.conftest import make_app, make_cluster


class MiniApp(DsmApp):
    """Inline app: body defined by subclass `body(proc, state)`."""

    name = "mini"

    def __init__(self, n_elements=64):
        self.n_elements = n_elements

    def configure(self, cluster):
        self.r = cluster.allocate("r", self.n_elements)

    def init_state(self, pid):
        return {"out": None}

    def run(self, proc, state):
        yield from self.body(proc, state)

    def body(self, proc, state):
        raise NotImplementedError
        yield


def run_mini(app, n=4):
    cluster = make_cluster(num_procs=n)
    cluster.run(app)
    return cluster


def test_write_visible_after_barrier():
    class App(MiniApp):
        def body(self, proc, state):
            if proc.pid == 0:
                v = yield from proc.write_range(self.r, 0, 4)
                v[:] = [1, 2, 3, 4]
            yield from proc.barrier()
            v = yield from proc.read_range(self.r, 0, 4)
            state["out"] = list(v)

    cluster = run_mini(App())
    for h in cluster.hosts:
        assert h.state["out"] == [1, 2, 3, 4]


def test_lock_protected_increment_is_atomic():
    class App(MiniApp):
        def body(self, proc, state):
            for _ in range(5):
                yield from proc.acquire(0)
                v = yield from proc.write_range(self.r, 0, 1)
                v[0] += 1
                yield from proc.release(0)
            yield from proc.barrier()

    app = App()
    cluster = run_mini(app, n=4)
    assert cluster.shared_snapshot(app.r)[0] == 20


def test_multi_writer_same_page_disjoint_bytes():
    class App(MiniApp):
        def body(self, proc, state):
            # all four processes write disjoint elements of page 0
            lo = proc.pid * 4
            v = yield from proc.write_range(self.r, lo, lo + 4)
            v[:] = proc.pid + 1
            yield from proc.barrier()
            v = yield from proc.read_range(self.r, 0, 16)
            state["out"] = list(v)

    cluster = run_mini(App())
    want = [1] * 4 + [2] * 4 + [3] * 4 + [4] * 4
    for h in cluster.hosts:
        assert h.state["out"] == want


def test_lock_ping_pong_carries_latest_value():
    class App(MiniApp):
        def body(self, proc, state):
            seen = []
            for _ in range(4):
                yield from proc.acquire(1)
                v = yield from proc.write_range(self.r, 0, 1)
                seen.append(float(v[0]))
                v[0] += 1
                yield from proc.release(1)
            state["out"] = seen
            yield from proc.barrier()

    cluster = run_mini(App(), n=2)
    all_seen = sorted(
        x for h in cluster.hosts for x in h.state["out"]
    )
    # each acquire observed a strictly increasing counter: 0..7 exactly once
    assert all_seen == list(range(8))


def test_home_waits_for_inflight_diff():
    """A reader whose home copy lags must block until the diff arrives,
    never read stale data."""

    class App(MiniApp):
        def body(self, proc, state):
            if proc.pid == 1:
                yield from proc.acquire(0)
                v = yield from proc.write_range(self.r, 0, 1)
                v[0] = 42
                yield from proc.release(0)
            else:
                # tiny delay so p1 acquires first
                yield from proc.compute(1e-3)
                yield from proc.acquire(0)
                v = yield from proc.read_range(self.r, 0, 1)
                state["out"] = float(v[0])
                yield from proc.release(0)

    cluster = run_mini(App(), n=2)
    assert cluster.hosts[0].state["out"] == 42.0


def test_reader_without_sync_may_be_stale_but_not_torn():
    """LRC: an unsynchronized reader sees a consistent old value."""

    class App(MiniApp):
        def body(self, proc, state):
            if proc.pid == 0:
                v = yield from proc.write_range(self.r, 0, 1)
                v[0] = 7
                yield from proc.barrier()
            else:
                v = yield from proc.read_range(self.r, 0, 1)
                state["out"] = float(v[0])
                yield from proc.barrier()

    cluster = run_mini(App(), n=2)
    assert cluster.hosts[1].state["out"] in (0.0, 7.0)


def test_self_reacquire_fast_path():
    class App(MiniApp):
        def body(self, proc, state):
            if proc.pid == 2:  # lock 2's manager: token rests here
                for _ in range(3):
                    yield from proc.acquire(2)
                    yield from proc.release(2)
                state["out"] = "done"
            yield from proc.barrier()

    cluster = run_mini(App())
    assert cluster.hosts[2].state["out"] == "done"
    # all local: no lock traffic beyond GrantInfo mirrors
    assert cluster.hosts[2].proto.stats.lock_acquires == 3


def test_release_unheld_lock_raises():
    class App(MiniApp):
        def body(self, proc, state):
            if proc.pid == 0:
                yield from proc.release(0)
            yield from proc.barrier()

    with pytest.raises(RuntimeError, match="unheld"):
        run_mini(App(), n=2)


def test_barrier_joins_vector_time():
    class App(MiniApp):
        def body(self, proc, state):
            v = yield from proc.write_range(
                self.r, proc.pid * 4, proc.pid * 4 + 1
            )
            v[0] = 1
            yield from proc.barrier()
            state["out"] = proc.vt

    cluster = run_mini(App())
    vts = [h.state["out"] for h in cluster.hosts]
    assert all(vt == vts[0] for vt in vts)
    assert all(c >= 1 for c in vts[0])


def test_fetch_counts_and_traffic():
    class App(MiniApp):
        def body(self, proc, state):
            if proc.pid == 0:
                v = yield from proc.write_range(self.r, 0, 64)
                v[:] = 5
            yield from proc.barrier()
            yield from proc.read_range(self.r, 0, 64)
            yield from proc.barrier()

    app = App()
    cluster = run_mini(app)
    # non-home readers fetched the invalidated pages
    total_fetches = sum(h.proto.stats.page_fetches for h in cluster.hosts)
    assert total_fetches > 0
    assert cluster.network.traffic.bytes_by_category["page"] > 0
    assert cluster.network.traffic.ft_bytes == 0  # no FT piggyback


def test_deterministic_runs():
    r1 = make_cluster(num_procs=4).run(make_app("counter"))
    r2 = make_cluster(num_procs=4).run(make_app("counter"))
    assert r1.wall_time == r2.wall_time
    assert r1.traffic.total_msgs == r2.traffic.total_msgs
    assert r1.traffic.total_bytes == r2.traffic.total_bytes


def test_varying_cluster_sizes():
    for n in (1, 2, 3, 8):
        cluster = make_cluster(num_procs=n)
        cluster.run(make_app("counter"))  # check_result runs inside
