"""Integration tests: every workload matches its sequential golden model."""

import numpy as np
import pytest

from repro.apps.barnes import BarnesConfig, reference_barnes
from repro.apps.lu import LuConfig, reference_lu
from repro.apps.water_nsq import WaterNsqConfig, reference_water_nsq
from repro.apps.water_spatial import WaterSpatialConfig, reference_water_spatial

from tests.conftest import APP_NAMES, make_app, make_cluster


def test_app_matches_reference(app_name):
    cluster = make_cluster(num_procs=8)
    cluster.run(make_app(app_name))  # check_result asserts vs reference


@pytest.mark.parametrize("n_procs", [2, 5, 8])
def test_apps_across_cluster_sizes(n_procs):
    for name in APP_NAMES:
        cluster = make_cluster(num_procs=n_procs)
        cluster.run(make_app(name))


def test_water_nsq_reference_conserves_molecule_count():
    cfg = WaterNsqConfig(n_molecules=27, steps=2)
    pos = reference_water_nsq(cfg)
    assert pos.shape == (27, 3)
    assert ((pos >= 0) & (pos < 1)).all()  # stays in the unit box


def test_water_spatial_reference_shape():
    cfg = WaterSpatialConfig(n_molecules=64, steps=2, cells_per_side=3)
    pos = reference_water_spatial(cfg)
    assert pos.shape == (64, 3)
    assert ((pos >= 0) & (pos < 1)).all()


def test_barnes_reference_momentum_drift_small():
    """Symmetric-ish forces: the centre of mass should move slowly."""
    cfg = BarnesConfig(n_bodies=64, steps=3)
    pos = reference_barnes(cfg)
    assert pos.shape == (64, 3)
    assert np.abs(pos.mean(axis=0)).max() < 1.0


def test_lu_reference_reconstructs_matrix():
    from repro.apps.lu import _initial_matrix

    cfg = LuConfig(matrix_size=32, block_size=8)
    a0 = _initial_matrix(cfg)
    lu = reference_lu(cfg)
    l = np.tril(lu, -1) + np.eye(cfg.matrix_size)
    u = np.triu(lu)
    np.testing.assert_allclose(l @ u, a0, rtol=1e-8, atol=1e-8)


def test_barnes_workload_is_imbalanced():
    """The core-owning process writes more diff bytes than the edge one —
    the imbalance driving the paper's Barnes observations (§5.2)."""
    cluster = make_cluster(num_procs=8)
    cluster.run(make_app("barnes", steps=2))
    diff_bytes = [h.proto.stats.diff_bytes_created for h in cluster.hosts]
    assert max(diff_bytes) > 1.5 * (min(diff_bytes) + 1)


def test_water_spatial_footprint_dominated_by_cells():
    cluster = make_cluster(num_procs=8)
    app = make_app("water-spatial", steps=1)
    cluster.run(app)
    assert app.r_cells.nbytes > app.r_pos.nbytes


def test_apps_have_expected_sync_mix():
    """water-nsq is lock-heavy, barnes is barrier-heavy, lu lock-free."""
    stats = {}
    for name in ("water-nsq", "barnes", "lu"):
        cluster = make_cluster(num_procs=8)
        cluster.run(make_app(name))
        locks = sum(h.proto.stats.lock_acquires for h in cluster.hosts)
        bars = sum(h.proto.stats.barriers for h in cluster.hosts)
        stats[name] = (locks, bars)
    assert stats["lu"][0] == 0
    assert stats["water-nsq"][0] > stats["water-nsq"][1]
    assert stats["barnes"][1] >= 2 * 8  # many barriers
