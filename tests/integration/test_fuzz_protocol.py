"""Randomized protocol fuzzing.

A seeded generator builds a random-but-race-free workload (lock-guarded
integer read-modify-writes, barrier-separated whole-region validation
reads) and runs it three ways: base protocol, fault-tolerant, and
fault-tolerant with a crash. All integer arithmetic is exact in float64,
so every variant must produce the bit-identical final region and every
mid-run validation read must observe the exact expected running sum —
a far stronger check than the hand-written scenarios.
"""

from typing import Any, Dict, Iterator, List, Tuple

import numpy as np
import pytest

from repro import DsmCluster, DsmConfig
from repro.apps.base import DsmApp, phase_loop
from repro.core import LogOverflowPolicy

N_PROCS = 8
N_LOCKS = 8
CELLS_PER_LOCK = 24  # cells [lock*24, (lock+1)*24) are guarded by `lock`


def make_script(seed: int) -> Tuple[int, List[List[List[Tuple[int, int, int]]]]]:
    """rounds, script[pid][round] = [(lock, cell_off, add), ...]."""
    rng = np.random.default_rng(seed)
    rounds = int(rng.integers(2, 5))
    script = [
        [
            [
                (
                    int(rng.integers(0, N_LOCKS)),
                    int(rng.integers(0, CELLS_PER_LOCK)),
                    int(rng.integers(1, 9)),
                )
                for _ in range(int(rng.integers(0, 7)))
            ]
            for _ in range(rounds)
        ]
        for _ in range(N_PROCS)
    ]
    return rounds, script


class FuzzApp(DsmApp):
    name = "fuzz"

    def __init__(self, seed: int):
        self.seed = seed
        self.rounds, self.script = make_script(seed)
        self.n_cells = N_LOCKS * CELLS_PER_LOCK

    def configure(self, cluster):
        self.r = cluster.allocate("cells", self.n_cells)

    def init_state(self, pid):
        return {"step": 0, "phase": 0, "sums": []}

    def expected_sum_after(self, rnd: int) -> int:
        return sum(
            add
            for pid in range(N_PROCS)
            for r in range(rnd + 1)
            for (_l, _c, add) in self.script[pid][r]
        )

    def run(self, proc, state):
        app = self

        def phase_rmw(proc, state, rnd):
            for lock, cell_off, add in app.script[proc.pid][rnd]:
                cell = lock * CELLS_PER_LOCK + cell_off
                yield from proc.acquire(lock)
                v = yield from proc.write_range(app.r, cell, cell + 1)
                v[0] = v[0] + add
                yield from proc.compute(2e-6)
                yield from proc.release(lock)
            yield from proc.barrier()

        def phase_validate(proc, state, rnd):
            v = yield from proc.read_range(app.r, 0, app.n_cells)
            state["sums"].append(float(np.asarray(v).sum()))
            yield from proc.barrier()

        yield from phase_loop(proc, state, app.rounds, [phase_rmw, phase_validate])

    def check_result(self, cluster):
        final = np.asarray(cluster.shared_snapshot(self.r))
        assert final.sum() == self.expected_sum_after(self.rounds - 1)
        for host in cluster.hosts:
            sums = host.state["sums"]
            assert len(sums) == self.rounds, (
                f"p{host.pid} validated {len(sums)}/{self.rounds} rounds"
            )
            for rnd, got in enumerate(sums):
                want = self.expected_sum_after(rnd)
                assert got == want, (
                    f"p{host.pid} round {rnd}: saw sum {got}, expected {want}"
                )


def run_fuzz(seed: int, crash: Tuple[int, float] | None, ft: bool = True):
    cluster = DsmCluster(
        DsmConfig(num_procs=N_PROCS),
        ft=ft,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.05, fp),
    )
    monitor = None
    if ft:
        # the invariant monitor rides along on every FT fuzz run: any
        # trim/vclock/FIFO/recoverability violation fails the test even
        # when the final memory happens to come out right
        from repro.observe import InvariantMonitor

        monitor = InvariantMonitor(cluster, scan_every=20)
    if crash is not None:
        cluster.schedule_crash(crash[0], at_time=crash[1])
    app = FuzzApp(seed)
    res = cluster.run(app)
    if monitor is not None:
        violations = monitor.finish()
        assert not violations, [v.render() for v in violations]
    return np.asarray(cluster.shared_snapshot(app.r)).copy(), res


SEEDS = list(range(12))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_base_vs_ft_identical(seed):
    base_mem, _ = run_fuzz(seed, None, ft=False)
    ft_mem, _ = run_fuzz(seed, None, ft=True)
    assert np.array_equal(base_mem, ft_mem)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("frac", [0.15, 0.45])
def test_fuzz_crash_recovery_exact(seed, frac):
    _, golden = run_fuzz(seed, None)
    T = golden.wall_time
    victim = seed % N_PROCS
    golden_mem, _ = run_fuzz(seed, None)
    crashed_mem, res = run_fuzz(seed, (victim, T * frac))
    # check_result already validated every node's per-round sums and the
    # final total; additionally the final memory must be bit-identical
    assert np.array_equal(golden_mem, crashed_mem)
    assert res.crashes == res.recoveries
