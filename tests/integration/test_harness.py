"""Smoke-scale tests of the experiment harness (tables and figures)."""

import pytest

from repro.harness.experiment import PAPER, paper_setups, run_base, run_ft
from repro.harness.figures import figure3, figure3_table, figure4, figure4_render
from repro.harness.tables import (
    run_all_experiments,
    table1,
    table2,
    table3,
    table4,
)


@pytest.fixture(scope="module")
def smoke_experiments():
    return run_all_experiments(scale="smoke")


def test_paper_values_cover_all_apps():
    names = {s.name for s in paper_setups("smoke")}
    assert names == set(PAPER)
    with pytest.raises(ValueError):
        paper_setups("giant")


def test_tables_render_all_apps(smoke_experiments):
    for fn in (table1, table2, table3, table4):
        t = fn(smoke_experiments)
        assert len(t.rows) == 3
        text = t.render()
        for name in ("barnes", "water-nsq", "water-spatial"):
            assert name in text


def test_table1_reports_footprints(smoke_experiments):
    t = table1(smoke_experiments)
    assert all("KB" in c or "MB" in c for c in t.column("Shared memory"))


def test_figure3_structure(smoke_experiments):
    data = figure3(smoke_experiments)
    for bars in data.values():
        assert set(bars) == {"base", "ft"}
        assert abs(sum(bars["base"].values()) - 100.0) < 1e-6
    text = figure3_table(smoke_experiments).render()
    assert "TOTAL" in text


def test_figure4_structure(smoke_experiments):
    data = figure4(smoke_experiments)
    for name, series in data.items():
        assert set(series) == {"measured", "unbounded"}
        ks = [k for k, _ in series["measured"]]
        assert ks == sorted(ks)
        assert len(series["unbounded"]) == len(series["measured"])
    assert "Figure 4" in figure4_render(smoke_experiments)


def test_run_base_and_ft_independent_calls():
    setup = paper_setups("smoke")[1]  # water-nsq
    base = run_base(setup, num_procs=4)
    ft = run_ft(setup, num_procs=4)
    assert ft.result.wall_time >= base.result.wall_time * 0.9
