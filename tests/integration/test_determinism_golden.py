"""Golden determinism tests for the simulation fast path.

The paper's results are only as good as the simulator's determinism: a
run must be a pure function of its configuration, and performance work
on the hot path (ready-queue engine, interned vector clocks, zero-copy
pages) must not perturb a single virtual timestamp or traffic counter.

Two layers of protection:

* *run-to-run*: the same configuration executed twice in one process
  yields bit-identical results;
* *golden pins*: final virtual times (as exact float hex) and traffic
  counters recorded **before** the fast-path optimizations landed; any
  drift means an optimization changed simulation semantics, not just
  speed.
"""

import pytest

from tests.conftest import make_app, make_cluster

#: exact pre-optimization values for (app, procs=4, ft) configurations;
#: wall times are pinned as float hex so comparison is bit-identical
GOLDEN = {
    ("lu", False): {
        "wall_time_hex": "0x1.610937ad9b121p-6",
        "total_bytes": 754870,
        "total_msgs": 1590,
        "bytes_by_category": {"barrier": 38784, "diff": 167398, "page": 548688},
        "msgs_by_category": {"barrier": 144, "diff": 480, "page": 966},
    },
    ("lu", True): {
        "wall_time_hex": "0x1.d171b9726ea41p-4",
        "total_bytes": 761066,
        "total_msgs": 1586,
        "bytes_by_category": {"barrier": 39756, "diff": 167596, "page": 553714},
        "msgs_by_category": {"barrier": 144, "diff": 480, "page": 962},
    },
    ("counter", False): {
        "wall_time_hex": "0x1.f58cedc7fd695p-9",
        "total_bytes": 54398,
        "total_msgs": 162,
        "bytes_by_category": {
            "barrier": 2912, "diff": 586, "lock": 2052, "page": 48848,
        },
        "msgs_by_category": {"barrier": 36, "diff": 9, "lock": 31, "page": 86},
    },
    ("counter", True): {
        # re-recorded when grantors began logging the acquirer's *actual*
        # acquire timestamp (AcqAck, DESIGN.md §9): one extra lock-class
        # message per remote acquire, and the timing shift nudges page
        # traffic
        "wall_time_hex": "0x1.1b301f578928ap-5",
        "total_bytes": 57800,
        "total_msgs": 179,
        "bytes_by_category": {
            "barrier": 2984, "diff": 630, "lock": 3596, "page": 50590,
        },
        "msgs_by_category": {"barrier": 36, "diff": 9, "lock": 46, "page": 88},
    },
    # buddy replication on (DESIGN.md §11): the replica stream is its own
    # traffic category; its ack timing also shifts checkpoint trimming,
    # which nudges the base-protocol byte counts slightly
    ("counter", "ft-repl"): {
        "wall_time_hex": "0x1.2042dd88524dfp-5",
        "total_bytes": 157452,
        "total_msgs": 311,
        "bytes_by_category": {
            "barrier": 2962, "diff": 608, "lock": 3354, "page": 50348,
            "replica": 100180,
        },
        "msgs_by_category": {
            "barrier": 36, "diff": 9, "lock": 46, "page": 88, "replica": 132,
        },
    },
}


def run_once(app_name: str, ft):
    if ft == "ft-repl":
        from repro.core import FtConfig

        cluster = make_cluster(4, ft=True, ft_config=FtConfig(replicate=True))
    else:
        cluster = make_cluster(4, ft=ft)
    result = cluster.run(make_app(app_name))
    traffic = result.traffic
    return {
        "wall_time_hex": result.wall_time.hex(),
        "total_bytes": traffic.total_bytes,
        "total_msgs": traffic.total_msgs,
        "bytes_by_category": dict(sorted(traffic.bytes_by_category.items())),
        "msgs_by_category": dict(sorted(traffic.msgs_by_category.items())),
    }


@pytest.mark.parametrize("app_name", ["lu", "counter"])
@pytest.mark.parametrize("ft", [False, True], ids=["base", "ft"])
def test_matches_pre_optimization_golden(app_name, ft):
    assert run_once(app_name, ft) == GOLDEN[(app_name, ft)]


def test_matches_golden_with_replication():
    """Replication is deterministic too: pinned the day the buddy tier
    landed, any drift in the replica stream's timing or size shows here."""
    assert run_once("counter", "ft-repl") == GOLDEN[("counter", "ft-repl")]
    assert run_once("counter", "ft-repl") == run_once("counter", "ft-repl")


@pytest.mark.parametrize("app_name", ["lu", "counter"])
def test_run_to_run_identical(app_name):
    assert run_once(app_name, True) == run_once(app_name, True)


def test_golden_unchanged_with_armed_breakpoint():
    """The injection hooks are compiled in but must cost nothing.

    An armed-but-unreachable engine breakpoint (the crash-sweep
    primitive) must not perturb a single timestamp or counter: injection
    support has to be free on the failure-free path the golden pins
    protect.
    """
    cluster = make_cluster(4, ft=True)
    cluster.engine.break_at_step(10**9, lambda: None)
    result = cluster.run(make_app("counter"))
    traffic = result.traffic
    got = {
        "wall_time_hex": result.wall_time.hex(),
        "total_bytes": traffic.total_bytes,
        "total_msgs": traffic.total_msgs,
        "bytes_by_category": dict(sorted(traffic.bytes_by_category.items())),
        "msgs_by_category": dict(sorted(traffic.msgs_by_category.items())),
    }
    assert got == GOLDEN[("counter", True)]


def test_golden_unchanged_with_sampling_enabled():
    """Observation must not perturb the observed run.

    A ClusterObserver with both cadences on (virtual-time ticker at 1 ms
    plus barrier-episode sampling) only reads state, so every timestamp
    and traffic counter must still match the golden pins — the
    observability layer's core guarantee (DESIGN.md §7).
    """
    from repro.observe import ClusterObserver

    cluster = make_cluster(4, ft=True)
    observer = ClusterObserver(cluster, interval=1e-3, sample_on_barrier=True)
    result = cluster.run(make_app("counter"))
    observer.sample()
    traffic = result.traffic
    got = {
        "wall_time_hex": result.wall_time.hex(),
        "total_bytes": traffic.total_bytes,
        "total_msgs": traffic.total_msgs,
        "bytes_by_category": dict(sorted(traffic.bytes_by_category.items())),
        "msgs_by_category": dict(sorted(traffic.msgs_by_category.items())),
    }
    assert got == GOLDEN[("counter", True)]
    # and the observer did actually observe
    assert observer.registry.samples_taken > 10
    assert observer.registry.series_by_name("ft.log_volatile_bytes")
    # the latency engine collected through the same run without moving
    # a single pin: per-op percentile distributions are populated for
    # every key op class, and merging them is pure post-processing
    for name in ("lat.fetch", "lat.acquire", "lat.barrier", "lat.ckpt"):
        merged = observer.registry.merged_latency(name)
        assert merged is not None and merged.count > 0, name
        assert merged.percentile(99.0) >= merged.percentile(50.0)
    assert observer.registry.merged_latency("lat.ckpt").min > 0.0


def test_golden_unchanged_with_windowing_enabled():
    """Windowed tail-latency rotation must not perturb the observed run.

    With windowing on, every latency observation additionally files into
    the fixed virtual-time window containing the observation instant.
    The rotation's clock callback reads the engine's virtual time and
    nothing else (DESIGN.md §13), so all golden pins must hold, and
    merging every window back together must reproduce the whole-run
    distribution exactly.
    """
    from repro.observe import ClusterObserver

    cluster = make_cluster(4, ft=True)
    observer = ClusterObserver(
        cluster, interval=1e-3, sample_on_barrier=True, window_s=1e-3
    )
    result = cluster.run(make_app("counter"))
    observer.sample()
    traffic = result.traffic
    got = {
        "wall_time_hex": result.wall_time.hex(),
        "total_bytes": traffic.total_bytes,
        "total_msgs": traffic.total_msgs,
        "bytes_by_category": dict(sorted(traffic.bytes_by_category.items())),
        "msgs_by_category": dict(sorted(traffic.msgs_by_category.items())),
    }
    assert got == GOLDEN[("counter", True)]
    # the rotation actually rotated: multiple windows, and window-merge
    # equals whole-run merge for every op class that observed anything
    for name in observer.registry.latency_names():
        total = observer.registry.merged_latency(name)
        windows = observer.registry.merged_windows(name)
        if total is None or not total.count:
            continue
        assert windows, name
        merged = type(total).merged(windows.values(), name=name)
        assert merged.count == total.count, name
        assert merged.buckets == total.buckets, name
        for p in (50.0, 99.0):
            assert merged.percentile(p) == total.percentile(p), name
    assert len(observer.registry.merged_windows("lat.acquire")) > 1


def test_golden_unchanged_with_span_tracing_enabled():
    """Span tracing must not perturb the traced run.

    The SpanTracer wraps sends, deliveries and protocol coroutines but
    only records: no messages, no CPU charges, no clock perturbation.
    Every timestamp and traffic counter must still match the golden
    pins — the span DAG is an observation, not a participant
    (DESIGN.md §8).
    """
    from repro.observe.tracing import SpanTracer

    cluster = make_cluster(4, ft=True)
    tracer = SpanTracer(cluster)
    result = cluster.run(make_app("counter"))
    traffic = result.traffic
    got = {
        "wall_time_hex": result.wall_time.hex(),
        "total_bytes": traffic.total_bytes,
        "total_msgs": traffic.total_msgs,
        "bytes_by_category": dict(sorted(traffic.bytes_by_category.items())),
        "msgs_by_category": dict(sorted(traffic.msgs_by_category.items())),
    }
    assert got == GOLDEN[("counter", True)]
    # and the tracer did actually trace: spans for every kind of
    # blocking operation, one causal edge per sent message
    assert not tracer.validate()
    assert len(tracer.edges) == traffic.total_msgs
    kinds = {s.kind for s in tracer.spans}
    assert {"app", "compute", "fetch", "acquire", "barrier", "flush",
            "ckpt", "ckpt_write"} <= kinds


@pytest.mark.parametrize("profile", [False, True], ids=["plain", "profiled"])
def test_bench_runs_deterministic_across_profile(profile):
    """The bench harness reports identical simulations with --profile on/off."""
    from repro.metrics.bench import run_app_bench

    results = {
        p: run_app_bench("counter", procs=4, ft=True, profile=p)
        for p in (False, profile)
    }
    a, b = results[False], results[profile]
    assert a.virtual_time.hex() == b.virtual_time.hex()
    assert a.total_msgs == b.total_msgs
    assert a.total_bytes == b.total_bytes
    assert a.events == b.events


def test_golden_unchanged_with_monitor_attached():
    """The invariant monitor must not perturb the monitored run.

    The InvariantMonitor wraps sends, deliveries, probes and the engine
    event tap but only reads protocol state — no messages, no CPU
    charges, no clock perturbation. Every timestamp and traffic counter
    must still match the golden pins, while the monitor demonstrably
    checked every invariant class and found nothing (DESIGN.md §9).
    """
    from repro.observe import INVARIANTS, InvariantMonitor

    cluster = make_cluster(4, ft=True)
    monitor = InvariantMonitor(cluster)
    result = cluster.run(make_app("counter"))
    assert monitor.finish() == []
    traffic = result.traffic
    got = {
        "wall_time_hex": result.wall_time.hex(),
        "total_bytes": traffic.total_bytes,
        "total_msgs": traffic.total_msgs,
        "bytes_by_category": dict(sorted(traffic.bytes_by_category.items())),
        "msgs_by_category": dict(sorted(traffic.msgs_by_category.items())),
    }
    assert got == GOLDEN[("counter", True)]
    # and the monitor did actually monitor
    for kind in INVARIANTS:
        assert monitor.checks[kind] > 0, f"{kind} never checked"
