"""Integration tests for the buddy-replication tier (DESIGN.md §11).

End-to-end claims: a replicated cluster mirrors committed checkpoints
into ring buddies and keeps acks flowing; buddy death re-targets the
stream; a protected node dying mid-transfer leaves the buddy on the
previous committed base; and — the tentpole — overlapping failures that
degrade an unreplicated cluster to :class:`OverlappingFailureError`
complete and validate when replication is on.
"""

from __future__ import annotations

import pytest

from repro.core import FtConfig
from repro.core.recovery import OverlappingFailureError
from repro.sim.trace import Tracer
from tests.conftest import make_app, make_cluster

N = 4
FAST_DETECT = {"failure_detection_delay": 2e-3}


def replicated_cluster(**overrides):
    return make_cluster(
        num_procs=N, ft=True, l_fraction=0.2,
        ft_config=FtConfig(replicate=True), **overrides,
    )


def run_free(**overrides):
    """One failure-free replicated counter run; returns (cluster, result)."""
    cluster = replicated_cluster(**overrides)
    res = cluster.run(make_app("counter"))  # check_result validates
    return cluster, res


# ---------------------------------------------------------------------------
# crash-free: the ring replicates and acks flow
# ---------------------------------------------------------------------------
def test_ring_buddies_and_replica_traffic():
    cluster, res = run_free()
    assert res.traffic.bytes_by_category["replica"] > 0
    assert res.traffic.msgs_by_category["replica"] > 0
    from repro.core.replica import best_record

    for host in cluster.hosts:
        repl = host.ft.repl
        assert repl is not None
        assert repl.buddy == (host.pid + 1) % N
        # acks flowed: at most the final checkpoint (whose transfer the
        # app end can race) is still unacked
        assert repl.acked_seqno >= 1
        assert repl.lag <= 1
        # ... and the buddy actually holds a committed record at the ack
        buddy = cluster.hosts[repl.buddy]
        rec = best_record(buddy, host.pid)
        assert rec is not None and rec.seqno == repl.acked_seqno


def test_replication_off_means_no_replica_traffic():
    cluster = make_cluster(num_procs=N, ft=True, l_fraction=0.2)
    res = cluster.run(make_app("counter"))
    assert "replica" not in res.traffic.bytes_by_category
    assert all(h.ft.repl is None for h in cluster.hosts)


# ---------------------------------------------------------------------------
# buddy death mid-stream: retarget, then re-buddy after recovery
# ---------------------------------------------------------------------------
def test_buddy_death_retargets_then_rebuddies():
    # p1 is p0's buddy; kill it mid-run and watch p0's stream re-target
    # to the next live ring node (p2), then return to p1 once recovered
    _, free = run_free(**FAST_DETECT)
    cluster = replicated_cluster(**FAST_DETECT)
    tracer = Tracer(cluster, kinds={"repl"})
    cluster.schedule_crash(1, at_time=0.3 * free.wall_time)
    res = cluster.run(make_app("counter"))
    assert res.crashes == 1 and res.recoveries == 1

    retargets = [e for e in tracer.events if e.detail.startswith("retarget")]
    p0_retargets = [e for e in retargets if e.pid == 0]
    # p0 lost its buddy (→ p2), then re-buddied back to p1 at recovery
    assert any("old=1 new=2" in e.detail for e in p0_retargets)
    assert any("new=1" in e.detail for e in p0_retargets[1:])
    # the final ring is the designated one again, fully synced
    for host in cluster.hosts:
        assert host.ft.repl.buddy == (host.pid + 1) % N
        assert cluster.hosts[host.ft.repl.buddy].replica_store.has(host.pid)


def test_recovered_node_resyncs_into_buddy():
    # after p1's crash+recovery its own stream starts a fresh epoch: its
    # buddy p2 must end up holding a committed record of the new
    # incarnation (full_sync on retarget/recovery, not an op tail on a
    # stale base)
    _, free = run_free(**FAST_DETECT)
    cluster = replicated_cluster(**FAST_DETECT)
    cluster.schedule_crash(1, at_time=0.3 * free.wall_time)
    cluster.run(make_app("counter"))
    host = cluster.hosts[1]
    repl = host.ft.repl
    assert repl.acked_seqno == host.ckpt_mgr.next_seqno - 1
    assert cluster.hosts[2].replica_store.store_for(1).keys() == [
        ("replica", repl.acked_seqno)
    ]


# ---------------------------------------------------------------------------
# torn replica: protected node dies between begin and commit
# ---------------------------------------------------------------------------
def test_protected_death_mid_transfer_leaves_committed_base():
    """Crash the protected node right after it sent begin(seqno): the
    buddy keeps the pending record invisible and serves the previous
    committed base until the recovered incarnation re-syncs."""
    ref = replicated_cluster(**FAST_DETECT)
    ref_tracer = Tracer(ref, kinds={"repl"})
    ref.run(make_app("counter"))
    # pick p0's second checkpoint transfer so a committed base exists
    begins = [
        e for e in ref_tracer.events
        if e.pid == 0 and e.detail.startswith("begin seqno=2")
    ]
    assert begins, "reference run never began transferring ckpt 2"
    step = begins[0].step

    cluster = replicated_cluster(**FAST_DETECT)
    cluster.schedule_crash_at_step(0, step)
    seen = {}

    def check_buddy_store():
        # shortly after the crash, before recovery re-syncs: the buddy
        # holds ckpt 1 committed plus a torn (pending) ckpt 2
        store = cluster.hosts[1].replica_store.store_for(0)
        seen["keys"] = store.keys()
        seen["pending2"] = store.is_pending(("replica", 2))

    def probe(pid, kind, detail):
        if kind == "failure" and pid == 0 and "sched" not in seen:
            seen["sched"] = True
            cluster.engine.schedule(5e-4, check_buddy_store)

    cluster.probe = probe
    res = cluster.run(make_app("counter"))  # check_result validates
    assert res.crashes == 1 and res.recoveries == 1
    assert seen["pending2"] is True
    assert ("replica", 1) in seen["keys"]


# ---------------------------------------------------------------------------
# the tentpole: overlapping failures survived
# ---------------------------------------------------------------------------
def overlap_schedule():
    """A (first_crash, second_crash) time pair where the second victim
    dies inside the first victim's recovery window — discovered against
    the actual run rather than hard-coded, so timing-model changes keep
    the schedule meaningful."""
    free = make_cluster(num_procs=N, ft=True, l_fraction=0.2)
    t_free = free.run(make_app("counter")).wall_time

    probe_times = {}
    single = make_cluster(num_procs=N, ft=True, l_fraction=0.2)

    def probe(pid, kind, detail):
        if kind == "recovery" and pid == 3:
            probe_times.setdefault(detail.split()[0], single.engine.now)

    single.probe = probe
    single.schedule_crash(3, at_time=0.4 * t_free)
    single.run(make_app("counter"))
    begin = min(probe_times.values())
    live = probe_times["live"]
    assert begin < live
    return 0.4 * t_free, begin + 0.25 * (live - begin)


@pytest.mark.parametrize("second_victim", [0, 1, 2])
def test_overlapping_failures_survived_with_replication(second_victim):
    t1, t2 = overlap_schedule()
    cluster = replicated_cluster()
    tracer = Tracer(cluster, kinds={"repl"})
    cluster.schedule_crash(3, at_time=t1)
    cluster.schedule_crash(second_victim, at_time=t2)
    res = cluster.run(make_app("counter"))  # check_result validates
    assert res.crashes == 2 and res.recoveries == 2
    # at least one recovery actually read a buddy replica
    fetches = [e for e in tracer.events if e.detail.startswith("fetch kind=")]
    assert fetches, "no replica fetch despite overlapping failures"


def test_overlapping_failures_degrade_without_replication():
    t1, t2 = overlap_schedule()
    cluster = make_cluster(num_procs=N, ft=True, l_fraction=0.2)
    cluster.schedule_crash(3, at_time=t1)
    cluster.schedule_crash(2, at_time=t2)
    with pytest.raises(OverlappingFailureError):
        cluster.run(make_app("counter"))
