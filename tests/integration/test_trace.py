"""Tests for the protocol tracer."""

import pytest

from repro.sim.trace import TraceEvent, Tracer

from tests.conftest import make_app, make_cluster


def test_tracer_records_protocol_events():
    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.05)
    tracer = Tracer(cluster)
    cluster.run(make_app("counter"))
    counts = tracer.counts()
    assert counts.get("send", 0) > 0
    assert counts.get("lock", 0) >= 4 * 3  # every proc acquires per step
    assert counts.get("barrier", 0) > 0
    assert counts.get("flush", 0) > 0
    assert counts.get("fetch", 0) > 0
    assert counts.get("ckpt", 0) > 0
    # timestamps are nondecreasing
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_tracer_kind_filtering():
    cluster = make_cluster(num_procs=4)
    tracer = Tracer(cluster, kinds={"lock"})
    cluster.run(make_app("counter"))
    assert tracer.counts().keys() <= {"lock"}
    only_p0 = tracer.filter(pid=0)
    assert all(e.pid == 0 for e in only_p0)


def test_tracer_rejects_unknown_kind():
    cluster = make_cluster(num_procs=2)
    with pytest.raises(ValueError):
        Tracer(cluster, kinds={"nope"})


def test_tracer_records_failures():
    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.2)
    T = make_cluster(num_procs=4, ft=True, l_fraction=0.2).run(
        make_app("counter")
    ).wall_time
    tracer = Tracer(cluster, kinds={"failure"})
    cluster.schedule_crash(2, at_time=T * 0.4)
    cluster.run(make_app("counter"))
    assert len(tracer.filter(kind="failure")) == 1


def test_tracer_render_and_cap():
    cluster = make_cluster(num_procs=4)
    tracer = Tracer(cluster, max_events=10)
    cluster.run(make_app("counter"))
    assert tracer.dropped > 0
    text = tracer.render(limit=5)
    assert "more events" in text or "dropped" in text
    assert "p0" in text or "p1" in text
