"""Tests for the protocol tracer."""

import pytest

from repro.sim.trace import TraceEvent, Tracer

from tests.conftest import make_app, make_cluster


def test_tracer_records_protocol_events():
    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.05)
    tracer = Tracer(cluster)
    cluster.run(make_app("counter"))
    counts = tracer.counts()
    assert counts.get("send", 0) > 0
    assert counts.get("lock", 0) >= 4 * 3  # every proc acquires per step
    assert counts.get("barrier", 0) > 0
    assert counts.get("flush", 0) > 0
    assert counts.get("fetch", 0) > 0
    assert counts.get("ckpt", 0) > 0
    # timestamps are nondecreasing
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_tracer_kind_filtering():
    cluster = make_cluster(num_procs=4)
    tracer = Tracer(cluster, kinds={"lock"})
    cluster.run(make_app("counter"))
    assert tracer.counts().keys() <= {"lock"}
    only_p0 = tracer.filter(pid=0)
    assert all(e.pid == 0 for e in only_p0)


def test_tracer_rejects_unknown_kind():
    cluster = make_cluster(num_procs=2)
    with pytest.raises(ValueError):
        Tracer(cluster, kinds={"nope"})


def test_tracer_records_failures():
    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.2)
    T = make_cluster(num_procs=4, ft=True, l_fraction=0.2).run(
        make_app("counter")
    ).wall_time
    tracer = Tracer(cluster, kinds={"failure"})
    cluster.schedule_crash(2, at_time=T * 0.4)
    cluster.run(make_app("counter"))
    assert len(tracer.filter(kind="failure")) == 1


def test_tracer_render_and_cap():
    cluster = make_cluster(num_procs=4)
    tracer = Tracer(cluster, max_events=10)
    cluster.run(make_app("counter"))
    assert tracer.dropped > 0
    text = tracer.render(limit=5)
    assert "more events" in text or "dropped" in text
    assert "p0" in text or "p1" in text


def test_render_shows_placeholder_for_unset_step():
    """Events emitted before the engine runs any event must not render
    as the confusing ``#-1``."""
    ev = TraceEvent(time=1e-3, pid=2, kind="lock", detail="x", step=-1)
    assert "#-1" not in ev.render()
    assert "#——" in ev.render()
    # a real step still renders numerically
    assert "#42" in TraceEvent(1e-3, 2, "lock", "x", step=42).render()


def test_render_passthrough_filters():
    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    tracer = Tracer(cluster)
    cluster.run(make_app("counter"))
    # kind filter: only lock lines
    text = tracer.render(limit=10**9, kind="lock")
    assert text and all(" lock " in ln for ln in text.splitlines())
    # pid filter: only p2 lines
    text = tracer.render(limit=10**9, pid=2)
    assert text and all(" p2 " in ln for ln in text.splitlines())
    # time window: bounds are honored
    times = [e.time for e in tracer.events]
    lo, hi = times[len(times) // 4], times[3 * len(times) // 4]
    window = [e for e in tracer.events if lo <= e.time <= hi]
    text = tracer.render(limit=10**9, since=lo, until=hi)
    assert len(text.splitlines()) == len(window)
    # filters compose with the limit (truncation note reflects matches)
    text = tracer.render(limit=1, kind="send")
    n_sends = len(tracer.filter(kind="send"))
    assert f"{n_sends - 1} more events" in text


# ----------------------------------------------------------------------
# span tracing across crash/recovery
# ----------------------------------------------------------------------
def _ft_runtime():
    return make_cluster(num_procs=4, ft=True, l_fraction=0.1).run(
        make_app("counter")
    ).wall_time


def test_spans_on_crashed_node_are_abandoned_not_leaked():
    from repro.observe.tracing import SpanTracer

    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    tracer = SpanTracer(cluster)
    cluster.schedule_crash(2, at_time=_ft_runtime() * 0.4)
    result = cluster.run(make_app("counter"))
    assert result.crashes == 1 and result.recoveries == 1
    # nothing leaked open, and the victim's in-progress spans at the
    # crash instant were closed as abandoned
    assert tracer.validate() == []
    assert not tracer.open_spans()
    abandoned = tracer.abandoned_spans(pid=2)
    assert abandoned
    crash_t = tracer.crash_points[0][1]
    assert all(s.t1 == crash_t for s in abandoned)
    assert all(s.incarnation == 0 for s in abandoned)
    # no other node lost spans
    assert not tracer.abandoned_spans(pid=0)


def test_recovery_incarnation_spans_get_fresh_ids():
    from repro.observe.tracing import SpanTracer

    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    tracer = SpanTracer(cluster)
    cluster.schedule_crash(2, at_time=_ft_runtime() * 0.4)
    cluster.run(make_app("counter"))
    gen0 = {s.sid for s in tracer.spans if s.pid == 2 and s.incarnation == 0}
    gen1 = {s.sid for s in tracer.spans if s.pid == 2 and s.incarnation == 1}
    assert gen0 and gen1
    assert not gen0 & gen1
    # the new incarnation opened a fresh app span and closed it cleanly
    apps = [s for s in tracer.spans_by_kind("app", pid=2)]
    assert [s.incarnation for s in apps] == [0, 1]
    assert apps[0].status == "abandoned"
    assert apps[1].status == "closed"
    # the recovery phase itself is a span, annotated with its progress
    recs = tracer.spans_by_kind("recovery", pid=2)
    assert len(recs) == 1 and recs[0].status == "closed"
    assert "begin incarnation=1" in recs[0].detail
    # reconciliation holds against the final incarnation's TimeStats
    from repro.observe.tracing import reconcile_with_time_stats

    assert reconcile_with_time_stats(tracer) == []


def test_span_dag_validates_after_mid_transfer_crash():
    """Crash-sweep style: kill the victim in the middle of a checkpoint
    disk write (found by step from a reference trace), where torn state
    is most likely, and require a well-formed span DAG."""
    from repro.observe.tracing import SpanTracer, compute_critical_path

    # reference run: find a step inside a ckpt_write window on p1
    ref_cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    ref = Tracer(ref_cluster, kinds={"ckpt_write"})
    ref_cluster.run(make_app("counter"))
    begins = [
        e for e in ref.filter(kind="ckpt_write")
        if e.pid == 1 and e.detail.startswith("begin")
    ]
    assert begins, "reference run must checkpoint on p1"
    crash_step = begins[0].step + 1  # mid disk write

    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    tracer = SpanTracer(cluster)
    cluster.schedule_crash_at_step(1, crash_step)
    result = cluster.run(make_app("counter"))
    assert result.crashes == 1 and result.recoveries == 1
    assert tracer.validate() == []
    # the torn ckpt_write span on the victim was abandoned mid-flight
    torn = [
        s for s in tracer.spans_by_kind("ckpt_write", pid=1)
        if s.status == "abandoned"
    ]
    assert len(torn) == 1
    # the critical path still covers the whole (longer) run
    segments = compute_critical_path(tracer)
    total = sum(s.duration for s in segments)
    assert abs(total - result.wall_time) < 1e-6 * result.wall_time
