"""Integration tests for single-fault recovery (§4.3).

The central claim the paper only proved on paper: LLT/CGC retain exactly
enough state for any single process to recover at any time. We crash
each kind of process (ordinary, lock manager, barrier manager, home) at
many points and check the final results against the golden model.
"""

import pytest

from repro import DsmCluster, DsmConfig
from repro.core import LogOverflowPolicy

from tests.conftest import make_app, make_cluster


def golden_time(name, n=8, l_fraction=0.2, **kw):
    cluster = make_cluster(num_procs=n, ft=True, l_fraction=l_fraction)
    res = cluster.run(make_app(name, **kw))
    return res.wall_time


def run_with_crash(name, victim, at_time, n=8, l_fraction=0.2, **kw):
    cluster = make_cluster(num_procs=n, ft=True, l_fraction=l_fraction)
    cluster.schedule_crash(victim, at_time=at_time)
    res = cluster.run(make_app(name, **kw))  # check_result validates
    return cluster, res


# ---------------------------------------------------------------------------
# broad matrix on the cheap counter app
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("victim", [0, 1, 3, 7])
@pytest.mark.parametrize("frac", [0.1, 0.3, 0.5])
def test_counter_crash_matrix(victim, frac):
    T = golden_time("counter")
    cluster, res = run_with_crash("counter", victim, T * frac)
    assert res.crashes == 1
    assert res.recoveries == 1


@pytest.mark.parametrize("victim", [1, 6])
def test_counter_late_crash(victim):
    """A crash near the end either recovers cleanly or is a no-op (the
    victim may already have finished); results are validated either way."""
    T = golden_time("counter")
    cluster, res = run_with_crash("counter", victim, T * 0.75)
    assert res.crashes == res.recoveries


# ---------------------------------------------------------------------------
# one representative point per real app / victim kind
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("victim,frac", [(3, 0.1), (3, 0.5), (0, 0.3), (2, 0.6)])
def test_water_nsq_recovery(victim, frac):
    T = golden_time("water-nsq")
    cluster, res = run_with_crash("water-nsq", victim, T * frac)
    assert res.recoveries == 1


@pytest.mark.parametrize("victim,frac", [(3, 0.15), (0, 0.5), (5, 0.4)])
def test_water_spatial_recovery(victim, frac):
    T = golden_time("water-spatial")
    run_with_crash("water-spatial", victim, T * frac)


@pytest.mark.parametrize("victim,frac", [(3, 0.2), (0, 0.5), (2, 0.1), (5, 0.7)])
def test_barnes_recovery(victim, frac):
    T = golden_time("barnes")
    run_with_crash("barnes", victim, T * frac)


@pytest.mark.parametrize("victim,frac", [(1, 0.3), (0, 0.6)])
def test_lu_recovery(victim, frac):
    T = golden_time("lu")
    run_with_crash("lu", victim, T * frac)


# ---------------------------------------------------------------------------
# targeted scenarios
# ---------------------------------------------------------------------------


def test_crash_before_first_checkpoint_restarts_from_initial():
    """Very early crash: the victim restarts from the virtual checkpoint 0."""
    T = golden_time("counter")
    cluster, res = run_with_crash("counter", 3, T * 0.01)
    assert cluster.hosts[3].recovered_count == 1
    # no real checkpoint existed yet at crash time in most configs; either
    # way the result check inside run() passed


def test_crash_of_barrier_manager():
    """Process 0 is the barrier manager; its episode state must rebuild."""
    T = golden_time("barnes")
    cluster, res = run_with_crash("barnes", 0, T * 0.4)
    mgr = cluster.hosts[0].proto.barrier_mgr
    assert mgr is not None
    assert mgr.next_episode > 0


def test_crash_with_llt_aggressively_trimming():
    """Small L: many checkpoints, heavy trimming — recovery must still
    find every diff it needs (Rule 3 end-to-end)."""
    T = golden_time("water-spatial", l_fraction=0.03)
    cluster, res = run_with_crash(
        "water-spatial", 3, T * 0.6, l_fraction=0.03
    )
    # trimming really happened
    assert any(h.ft.logs.diff.bytes_discarded > 0 for h in cluster.hosts)


def test_recovered_process_ft_state_reusable():
    """After recovery the process checkpoints and trims again normally."""
    T = golden_time("water-spatial", l_fraction=0.05)
    cluster, res = run_with_crash(
        "water-spatial", 3, T * 0.3, l_fraction=0.05, steps=4
    )
    h = cluster.hosts[3]
    assert h.ft.stats.checkpoints_taken >= 1


def test_crash_noop_after_finish():
    """A crash scheduled after the app finished is ignored."""
    T = golden_time("counter")
    cluster, res = run_with_crash("counter", 3, T * 100)
    assert res.crashes == 0
    assert res.recoveries == 0


def test_recovery_traffic_is_categorized():
    T = golden_time("counter")
    cluster, res = run_with_crash("counter", 3, T * 0.4)
    assert res.traffic.bytes_by_category["recovery"] > 0


FAST_DETECT = {"failure_detection_delay": 2e-3}


def test_two_sequential_failures_different_victims():
    """Single-fault at a time, but repeated: crash 3, recover, crash 5.

    A short failure-detection delay keeps the two recoveries strictly
    sequential (the paper's single-fault assumption).
    """
    T = golden_time("counter")
    cluster = make_cluster(num_procs=8, ft=True, l_fraction=0.2, **FAST_DETECT)
    cluster.schedule_crash(3, at_time=T * 0.2)
    res1 = cluster.run(make_app("counter"))
    assert res1.recoveries == 1
    T1 = res1.wall_time

    cluster = make_cluster(num_procs=8, ft=True, l_fraction=0.2, **FAST_DETECT)
    cluster.schedule_crash(3, at_time=T * 0.2)
    cluster.schedule_crash(5, at_time=T1 * 0.55)
    res = cluster.run(make_app("counter"))
    assert res.crashes == res.recoveries
    assert res.crashes >= 1


def test_same_victim_crashes_twice():
    """Crash p3, then crash p3 again — whenever the second crash lands.

    The second fail-stop may hit while p3 is still *recovering* from the
    first; a crash of a recovering process kills the recovery incarnation
    and restarts recovery from the same stable state, so every crash that
    interrupts a recovery yields one fewer completed recovery than
    crashes, and the final recovery always completes.
    """
    T = golden_time("counter")
    cluster = make_cluster(num_procs=8, ft=True, l_fraction=0.2, **FAST_DETECT)
    cluster.schedule_crash(3, at_time=T * 0.2)
    T1 = cluster.run(make_app("counter")).wall_time

    cluster = make_cluster(num_procs=8, ft=True, l_fraction=0.2, **FAST_DETECT)
    cluster.schedule_crash(3, at_time=T * 0.2)
    cluster.schedule_crash(3, at_time=T1 * 0.55)
    res = cluster.run(make_app("counter"))
    # every crash is counted; only recoveries that went live count, so
    # crashes - recoveries = number of recoveries killed mid-flight
    assert res.crashes == 2
    assert 1 <= res.recoveries <= 2
    assert cluster.hosts[3].recovered_count == res.recoveries
    assert cluster.hosts[3].live and cluster.hosts[3].finished


def test_crash_during_recovery_restarts_recovery():
    """Regression: a fail-stop of a *recovering* host must not be ignored.

    The second crash is pinned inside the first recovery's window (after
    detection, before the recovery completes), so it always kills a live
    recovery incarnation. The restarted recovery must finish and the run
    must produce the failure-free result.
    """
    T = golden_time("counter")
    cluster = make_cluster(num_procs=8, ft=True, l_fraction=0.2, **FAST_DETECT)
    crash_t = T * 0.2
    # recovery starts at crash_t + 2ms; the restore disk read alone takes
    # >= 10ms (seek), so crash_t + 6ms is strictly inside the recovery
    cluster.schedule_crash(3, at_time=crash_t)
    cluster.schedule_crash(3, at_time=crash_t + 6e-3)
    res = cluster.run(make_app("counter"))
    assert res.crashes == 2
    assert res.recoveries == 1  # first incarnation was killed mid-recovery
    assert cluster.hosts[3].crashed_count == 2
    assert cluster.hosts[3].recovered_count == 1
    assert cluster.hosts[3].live and cluster.hosts[3].finished
