"""Integration tests for the FT layer in failure-free runs:
logging, checkpointing, LLT and CGC invariants (§4.2, §4.4, §5)."""

import pytest

from repro.core import FtConfig
from repro.core.policies import NeverPolicy
from repro import DsmCluster, DsmConfig
from repro.core import LogOverflowPolicy

from tests.conftest import make_app, make_cluster


def run_ft(name="counter", l_fraction=0.1, n=8, ft_config=None, **app_kw):
    cluster = make_cluster(
        num_procs=n, ft=True, l_fraction=l_fraction, ft_config=ft_config
    )
    res = cluster.run(make_app(name, **app_kw))
    return cluster, res


def test_results_identical_with_ft_enabled(app_name):
    """Fault tolerance must not change application results."""
    cluster, _ = run_ft(app_name)
    # check_result already ran inside cluster.run


def test_checkpoints_taken_under_log_overflow():
    cluster, res = run_ft("counter", l_fraction=0.02)
    ckpts = [s.checkpoints_taken for s in res.ft_stats]
    assert sum(ckpts) > 0
    # higher L -> fewer checkpoints
    _, res2 = run_ft("counter", l_fraction=0.5)
    assert sum(s.checkpoints_taken for s in res2.ft_stats) <= sum(ckpts)


def test_diff_logs_grow_and_get_saved():
    cluster, res = run_ft("water-spatial", l_fraction=0.1)
    for h in cluster.hosts:
        log = h.ft.logs.diff
        assert log.bytes_created > 0
        if h.ft.stats.checkpoints_taken:
            assert h.ft.stats.logs_saved_bytes > 0


def test_llt_discards_logs():
    cluster, res = run_ft("water-spatial", l_fraction=0.05, steps=5)
    discarded = sum(h.ft.logs.diff.bytes_discarded for h in cluster.hosts)
    created = sum(h.ft.logs.diff.bytes_created for h in cluster.hosts)
    assert created > 0
    assert discarded > 0, "LLT should discard once trimming info propagates"


def test_llt_disabled_keeps_everything():
    cfg = FtConfig(llt_enabled=False)
    cluster, _ = run_ft("water-spatial", l_fraction=0.05, ft_config=cfg, steps=4)
    assert all(h.ft.logs.diff.bytes_discarded == 0 for h in cluster.hosts)


def test_cgc_bounds_checkpoint_window():
    cluster, _ = run_ft("water-spatial", l_fraction=0.05, steps=5)
    for h in cluster.hosts:
        assert h.ckpt_mgr.max_window <= 4  # paper: at most 3 + our seed


def test_cgc_disabled_window_grows():
    cfg = FtConfig(cgc_enabled=False)
    cluster, _ = run_ft("water-spatial", l_fraction=0.03, ft_config=cfg, steps=5)
    windows = [h.ckpt_mgr.max_window for h in cluster.hosts]
    cluster2, _ = run_ft("water-spatial", l_fraction=0.03, steps=5)
    windows2 = [h.ckpt_mgr.max_window for h in cluster2.hosts]
    assert max(windows) >= max(windows2)


def test_rel_logs_bounded_by_rule2():
    cluster, _ = run_ft("water-nsq", l_fraction=0.05, steps=4)
    for h in cluster.hosts:
        # bounds may have advanced since the last checkpoint-time trim;
        # run LLT once more, then the Rule 2 invariant must hold exactly
        h.ft.run_llt()
        for j in range(cluster.config.num_procs):
            bound = h.ft.trim.rel_bound(j)
            for e in h.ft.logs.rel.for_acquirer(j):
                assert e.acq_t[j] > bound or bound == 0


def test_wn_log_trimming_respects_rule1():
    cluster, _ = run_ft("water-spatial", l_fraction=0.05, steps=4)
    for h in cluster.hosts:
        keep_from = h.ft.trim.wn_keep_from()
        own = h.proto.notices.own_after(h.pid, 0)
        # trimming ran at checkpoints; anything older than the bound at
        # that moment is gone, so the oldest retained own notice can be
        # below the *current* bound but never below 1
        assert all(n.interval >= 1 for n in own)


def test_piggyback_traffic_accounted():
    cluster, res = run_ft("water-spatial")
    assert res.traffic.ft_bytes > 0
    assert res.traffic.ft_overhead_percent() < 50


def test_piggyback_disabled_no_ft_traffic_but_no_gc():
    cfg = FtConfig(piggyback_enabled=False)
    cluster, res = run_ft("water-spatial", ft_config=cfg, steps=3)
    assert res.traffic.ft_bytes == 0
    # without propagated Tckp, Tmin stays zero and CGC frees nothing
    assert all(h.ckpt_mgr.pages_discarded_bytes == 0 for h in cluster.hosts)


def test_disk_traffic_recorded():
    cluster, res = run_ft("water-spatial", l_fraction=0.05)
    total_disk = sum(b for b, _ in res.disk_stats)
    assert total_disk > 0
    for h in cluster.hosts:
        if h.ft.stats.checkpoints_taken:
            assert h.disk.write_time > 0


def test_log_ckpt_time_bucket_populated():
    from repro.sim.node import TimeBucket

    cluster, res = run_ft("water-spatial", l_fraction=0.05)
    lc = sum(ts.seconds[TimeBucket.LOG_CKPT] for ts in res.time_stats)
    assert lc > 0


def test_never_policy_takes_no_checkpoints():
    cluster = DsmCluster(
        DsmConfig(num_procs=4),
        ft=True,
        policy_factory=lambda pid, fp: NeverPolicy(),
    )
    res = cluster.run(make_app("counter"))
    assert all(s.checkpoints_taken == 0 for s in res.ft_stats)


def test_manual_checkpoint_api():
    """proc.checkpoint() takes a checkpoint on demand (§5.4 API)."""
    from repro.apps.base import DsmApp
    from repro.core.policies import ManualPolicy

    class App(DsmApp):
        name = "manual"

        def configure(self, cluster):
            self.r = cluster.allocate("r", 64)

        def init_state(self, pid):
            return {}

        def run(self, proc, state):
            v = yield from proc.write_range(self.r, proc.pid, proc.pid + 1)
            v[0] = 1.0
            yield from proc.barrier()
            yield from proc.checkpoint()
            yield from proc.barrier()

    cluster = DsmCluster(
        DsmConfig(num_procs=4),
        ft=True,
        policy_factory=lambda pid, fp: ManualPolicy(),
    )
    res = cluster.run(App())
    assert all(s.checkpoints_taken == 1 for s in res.ft_stats)


def test_figure4_log_points_recorded():
    cluster, res = run_ft("water-spatial", l_fraction=0.05, steps=5)
    any_points = False
    for s in res.ft_stats:
        for ckpt_no, size in s.log_points:
            assert ckpt_no >= 1 and size >= 0
            any_points = True
    assert any_points
