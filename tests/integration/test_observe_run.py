"""End-to-end observation of an FT run: registry contents + run report."""

from repro.observe import (
    CLUSTER_NODE,
    ClusterObserver,
    build_report,
    load_jsonl,
    render_report,
    validate_report,
    write_jsonl,
)
from tests.conftest import make_app, make_cluster


def observed_run(num_procs=4, interval=1e-3):
    cluster = make_cluster(num_procs, ft=True)
    observer = ClusterObserver(cluster, interval=interval, sample_on_barrier=True)
    result = cluster.run(make_app("counter"))
    observer.sample()
    return cluster, observer, result


def test_key_series_track_the_run():
    cluster, observer, result = observed_run()
    reg = observer.registry

    # per-node log sizes: final sample equals the FT layer's live state
    for host in cluster.hosts:
        vol = reg.get_series("ft.log_volatile_bytes", host.pid)
        assert vol, f"p{host.pid}: no volatile-log series"
        assert vol[-1][1] == host.ft.logs.diff.volatile_bytes
        assert vol[-1][0] == result.wall_time  # final snapshot at end of run
        ckpts = reg.get_series("ft.checkpoints_taken", host.pid)
        assert ckpts[-1][1] == host.ft.stats.checkpoints_taken

    # diff traffic: monotone per node, final value matches protocol stats
    for host in cluster.hosts:
        pts = reg.get_series("dsm.diff_bytes_sent", host.pid)
        vals = [v for _, v in pts]
        assert vals == sorted(vals)
        assert vals[-1] == host.proto.stats.diff_bytes_sent

    # cluster-wide traffic gauge ends at the run totals
    total = reg.get_series("net.total_bytes", CLUSTER_NODE)
    assert total[-1][1] == result.traffic.total_bytes
    # in-flight channel gauges drain to zero by the end of the run
    assert reg.get_series("sim.channel_msgs_inflight", CLUSTER_NODE)[-1][1] == 0

    # figure-4 series: one point per checkpoint, x = checkpoint number
    for host in cluster.hosts:
        if host.ft.stats.checkpoints_taken:
            pts = reg.get_series("ft.log_disk_bytes", host.pid)
            assert [x for x, _ in pts] == list(range(1, len(pts) + 1))

    # wait histograms saw every barrier crossing
    for host in cluster.hosts:
        h = observer.node_probe(host.pid).barrier_wait
        assert h.count == host.proto.stats.barriers


def test_report_roundtrip_from_real_run(tmp_path):
    _cluster, observer, result = observed_run()
    report = build_report(
        observer.registry, {"app": "counter", "procs": 4, "ft": True}, result=result
    )
    assert validate_report(report) == []

    path = tmp_path / "observe_counter.jsonl"
    write_jsonl(str(path), report)
    again = load_jsonl(str(path))
    assert validate_report(again) == []
    assert again["header"]["app"] == "counter"
    assert again["summary"]["virtual_time"] == result.wall_time
    assert again["series"] == report["series"]

    text = render_report(again)
    assert "repro observe — counter on 4 simulated nodes" in text
    assert "log size (volatile) vs virtual time" in text
    assert "synchronization waits" in text
