"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro import DsmCluster, DsmConfig
from repro.apps.barnes import BarnesApp, BarnesConfig
from repro.apps.counter import CounterApp, CounterConfig
from repro.apps.kvstore import KvStoreApp, KvStoreConfig
from repro.apps.lu import LuApp, LuConfig
from repro.apps.session import SessionApp, SessionConfig
from repro.apps.water_nsq import WaterNsqApp, WaterNsqConfig
from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig
from repro.core import FtConfig, LogOverflowPolicy


def make_app(name: str, **overrides):
    """Small, fast default instances of every workload."""
    if name == "counter":
        return CounterApp(CounterConfig(**{"steps": 3, "n_elements": 512, **overrides}))
    if name == "kvstore":
        return KvStoreApp(
            KvStoreConfig(**{"steps": 2, "n_keys": 256, "n_stripes": 8, **overrides})
        )
    if name == "session":
        return SessionApp(
            SessionConfig(
                **{"steps": 2, "n_keys": 128, "requests_per_step": 6, **overrides}
            )
        )
    if name == "water-nsq":
        return WaterNsqApp(
            WaterNsqConfig(**{"n_molecules": 64, "steps": 3, **overrides})
        )
    if name == "water-spatial":
        return WaterSpatialApp(
            WaterSpatialConfig(**{"n_molecules": 216, "steps": 3, **overrides})
        )
    if name == "barnes":
        return BarnesApp(BarnesConfig(**{"n_bodies": 128, "steps": 2, **overrides}))
    if name == "lu":
        return LuApp(LuConfig(**{"matrix_size": 64, "block_size": 8, **overrides}))
    raise ValueError(name)


def make_cluster(
    num_procs: int = 8,
    ft: bool = False,
    l_fraction: float = 0.2,
    ft_config: FtConfig | None = None,
    **dsm_overrides,
) -> DsmCluster:
    return DsmCluster(
        DsmConfig(num_procs=num_procs, **dsm_overrides),
        ft=ft,
        ft_config=ft_config,
        policy_factory=lambda pid, fp: LogOverflowPolicy(l_fraction, fp),
    )


APP_NAMES = [
    "counter", "kvstore", "session", "water-nsq", "water-spatial", "barnes",
    "lu",
]


@pytest.fixture(params=APP_NAMES)
def app_name(request):
    return request.param
